"""Cross-plan equivalence: dense ≡ broadcast ≡ pruned ≡ sharded ≡ resident.

Every strategy the engine can route a batch through must compute the
same answers — the plan is a choice of *route*, never of *result*.  The
hypothesis suite pins this across the partitioning families real
sanitizers emit (uniform grid, AG, quadtree, kd-tree, DAF), shard counts
``K ∈ {1, 2, 3, 7}`` (plus any count forced through the
``REPRO_TEST_N_SHARDS`` env var — the CI leg sets 3), and the degenerate
inputs that historically break query engines: empty batches, full-domain
queries, single cells, and shard counts exceeding the partition count.

The sixth column is the resident shard-worker pool
(``shard_executor="resident"``, :class:`~repro.engine.ShardWorkerPool`):
worker processes answering over shared-memory shards must be
**bit-identical** to serial sharded evaluation — asserted with
``assert_array_equal``, not a tolerance — because the workers read the
very same shard arrays through shm, do no RNG work of their own, and
the parent merges partials in fixed shard order.  The CI resident leg
re-runs this module with ``REPRO_ENGINE_SHARD_EXECUTOR=resident`` (see
``test_env_forced_executor_is_exercised``).

All routing goes through the :mod:`repro.engine` facade (an
:class:`~repro.engine.Engine` per forced
:class:`~repro.engine.EngineConfig`) — the deprecated kwarg shims have
their own regression suite in ``tests/engine/test_deprecation.py``.

The suite also carries the skip-counter acceptance criterion (a shard
whose candidate bound is empty must provably skip the gather, observable
via :attr:`~repro.core.sharding.ShardedAnswer.skipped_shards`) and the
regression test for the forced-``pruned`` graceful fallback on matrices
below :data:`~repro.core.interval_index.PRUNE_MIN_PARTITIONS`.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    PLAN_BROADCAST,
    PLAN_DENSE,
    PLAN_PRUNED,
    PLAN_SHARDED,
    SHARD_SKIPPED,
    FrequencyMatrix,
    PrivateFrequencyMatrix,
    QueryError,
    answer_sharded,
    boxes_to_arrays,
    choose_packed_plan,
    full_box,
    packed_from_intervals,
    shard_bounds,
    split_shards,
)
from repro.core.interval_index import PRUNE_MIN_PARTITIONS
from repro.engine import Engine, EngineConfig, QueryRequest
from repro.experiments.parallel import ProcessPoolTrialExecutor
from repro.methods import get_sanitizer
from repro.methods._grid import axis_intervals
from repro.queries import WorkloadEvaluator, random_workload

#: Partition-emitting sanitizer families the equivalence must hold for.
METHODS = ["uniform", "ag", "quadtree", "kdtree", "daf_entropy"]

#: Shard counts of the equivalence matrix.  7 is deliberately coprime to
#: the usual power-of-two partition counts, so shard boundaries fall
#: mid-row; counts larger than the partition list are exercised
#: separately (they clip).
SHARD_COUNTS = [1, 2, 3, 7]

#: The CI leg forces an extra shard count through the environment so the
#: sharded path runs on every push even if the default list changes.
_env = os.environ.get("REPRO_TEST_N_SHARDS")
ENV_N_SHARDS = int(_env) if _env else None
if ENV_N_SHARDS is not None and ENV_N_SHARDS not in SHARD_COUNTS:
    SHARD_COUNTS.append(ENV_N_SHARDS)

#: The CI resident leg forces the shard executor the same way, so the
#: worker-pool column runs against the env-forced K on every push.
ENV_SHARD_EXECUTOR = os.environ.get("REPRO_ENGINE_SHARD_EXECUTOR") or None


def engine_answers(private, lows, highs, **config):
    """Answers through an :class:`Engine` forced to ``config``."""
    return Engine(private, EngineConfig(**config)).answer_arrays(lows, highs)


def sharded_evidence(private, lows, highs, *, n_shards=None, executor=None):
    """A :class:`~repro.core.sharding.ShardedAnswer` via the facade."""
    return Engine(
        private,
        EngineConfig(n_shards=n_shards, shard_executor=executor),
    ).answer_sharded(lows, highs)


def sanitized_private(method, shape, data_seed, noise_seed, epsilon):
    """A real sanitizer's private matrix over a random Poisson matrix."""
    rng = np.random.default_rng(data_seed)
    matrix = FrequencyMatrix(rng.poisson(3.0, shape).astype(float))
    return get_sanitizer(method).sanitize(matrix, epsilon, noise_seed)


def degenerate_and_random_queries(shape, rng, n_random=25):
    """Random boxes plus the degenerate cases the issue calls out."""
    boxes = [full_box(shape)]  # full domain
    boxes.append(tuple((0, 0) for _ in shape))  # single cell at the origin
    boxes.append(tuple((s - 1, s - 1) for s in shape))  # single cell at the end
    for _ in range(n_random):
        box = []
        for s in shape:
            a = int(rng.integers(0, s))
            b = int(rng.integers(0, s))
            box.append((min(a, b), max(a, b)))
        boxes.append(tuple(box))
    return boxes


def grid_private(shape=(256, 256), m=64):
    """The microbenchmark substrate: an m x m grid partitioning."""
    rng = np.random.default_rng(0)
    intervals = [axis_intervals(s, m) for s in shape]
    noisy = rng.poisson(40.0, size=m * m).astype(float)
    packed = packed_from_intervals(intervals, noisy, shape)
    return PrivateFrequencyMatrix.from_packed(packed, method="grid")


class TestEquivalenceMatrix:
    """dense ≡ broadcast ≡ pruned ≡ sharded on sanitizer output."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        method=st.sampled_from(METHODS),
        shape=st.tuples(st.integers(8, 40), st.integers(8, 40)),
        data_seed=st.integers(0, 2**16),
        noise_seed=st.integers(0, 2**16),
        epsilon=st.sampled_from([0.1, 0.5, 2.0]),
    )
    def test_all_plans_agree(
        self, method, shape, data_seed, noise_seed, epsilon
    ):
        private = sanitized_private(
            method, shape, data_seed, noise_seed, epsilon
        )
        rng = np.random.default_rng(data_seed ^ noise_seed)
        boxes = degenerate_and_random_queries(shape, rng)
        lows, highs = boxes_to_arrays(boxes)
        broadcast = engine_answers(private, lows, highs, plan=PLAN_BROADCAST)
        # Forced pruned may fall back to broadcast below the pruning
        # threshold — either way the values must match.
        pruned = engine_answers(private, lows, highs, plan=PLAN_PRUNED)
        dense = engine_answers(private, lows, highs, plan=PLAN_DENSE)
        np.testing.assert_allclose(pruned, broadcast, rtol=0, atol=1e-9)
        np.testing.assert_allclose(dense, broadcast, rtol=1e-9, atol=1e-6)
        for n_shards in SHARD_COUNTS:
            sharded = engine_answers(
                private, lows, highs, plan=PLAN_SHARDED, n_shards=n_shards
            )
            np.testing.assert_allclose(
                sharded, broadcast, rtol=0, atol=1e-9,
                err_msg=f"sharded(K={n_shards}) diverged from broadcast",
            )

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_sharded_reports_its_plan(self, method, n_shards):
        private = sanitized_private(method, (20, 24), 3, 5, 0.5)
        lows, highs = boxes_to_arrays(
            degenerate_and_random_queries(
                (20, 24), np.random.default_rng(1), n_random=10
            )
        )
        result = Engine(private, EngineConfig(n_shards=n_shards)).answer(
            QueryRequest(lows, highs)
        )
        assert result.plan == PLAN_SHARDED
        assert result.n_shards == min(n_shards, private.n_partitions)
        np.testing.assert_allclose(
            result.answers,
            engine_answers(private, lows, highs, plan=PLAN_BROADCAST),
            rtol=0,
            atol=1e-9,
        )


class TestShardEdgeCases:
    def test_empty_batch(self):
        private = grid_private(shape=(16, 16), m=4)  # 16 partitions
        empty = np.empty((0, 2), dtype=np.int64)
        result = sharded_evidence(private, empty, empty, n_shards=3)
        assert result.answers.size == 0
        assert result.skipped_shards == result.n_shards == 3
        answer = Engine(private, EngineConfig(n_shards=3)).answer(
            QueryRequest(empty, empty)
        )
        assert answer.answers.size == 0 and answer.plan == PLAN_SHARDED
        assert answer.skipped_shards == 3  # evidence survives the facade

    def test_shard_count_exceeding_partition_count(self):
        private = sanitized_private("kdtree", (16, 16), 2, 3, 0.5)
        k = private.n_partitions
        lows, highs = boxes_to_arrays(
            degenerate_and_random_queries(
                (16, 16), np.random.default_rng(4), n_random=10
            )
        )
        result = sharded_evidence(private, lows, highs, n_shards=10 * k)
        assert result.n_shards == k  # clipped: one partition per shard
        np.testing.assert_allclose(
            result.answers,
            engine_answers(private, lows, highs, plan=PLAN_BROADCAST),
            rtol=0,
            atol=1e-9,
        )

    def test_shard_bounds_partition_the_axis(self):
        for k, n in [(1, 1), (5, 2), (7, 7), (12, 5), (100, 7), (3, 9)]:
            bounds = shard_bounds(k, n)
            assert bounds[0][0] == 0 and bounds[-1][1] == k
            assert all(b[1] == c[0] for b, c in zip(bounds, bounds[1:]))
            sizes = [stop - start for start, stop in bounds]
            assert min(sizes) >= 1 and max(sizes) - min(sizes) <= 1
            assert len(bounds) == min(k, n)

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(QueryError, match="n_shards"):
            EngineConfig(n_shards=0)
        with pytest.raises(QueryError, match="n_shards"):
            shard_bounds(10, -2)

    def test_n_shards_conflicts_with_other_plans(self):
        with pytest.raises(QueryError, match="sharded"):
            EngineConfig(plan=PLAN_PRUNED, n_shards=2)

    def test_sharded_rejected_on_dense_backed(self):
        dense = PrivateFrequencyMatrix.from_dense_noisy(np.ones((8, 8)))
        one = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(QueryError, match="dense-backed"):
            Engine(dense, EngineConfig(plan=PLAN_SHARDED)).answer(
                QueryRequest(one, one)
            )
        with pytest.raises(QueryError, match="dense-backed"):
            Engine(dense, EngineConfig(n_shards=2)).answer_sharded(one, one)


class TestShardSkipping:
    """The acceptance criterion: empty shards provably skip the gather."""

    def test_corner_queries_skip_far_shards(self):
        private = grid_private()
        packed = private.packed
        rng = np.random.default_rng(7)
        # Queries confined to the top-left 1/8 of the rows: partitions
        # are enumerated row-major, so later shards cannot overlap.
        lows = np.stack(
            [rng.integers(0, 32, size=200), rng.integers(0, 256, size=200)],
            axis=1,
        ).astype(np.int64)
        highs = lows + rng.integers(0, 3, size=lows.shape)
        highs = np.minimum(highs, [[31, 255]])
        result = sharded_evidence(private, lows, highs, n_shards=8)
        assert result.skipped_shards > 0
        assert result.plans.count(SHARD_SKIPPED) == result.skipped_shards
        # Every skip is provable: brute-force overlap over the shard's
        # partition range finds nothing.
        lo, hi = packed.lo, packed.hi
        for (start, stop), plan in zip(result.bounds, result.plans):
            overlaps = np.logical_and(
                lo[None, start:stop, :] <= highs[:, None, :],
                hi[None, start:stop, :] >= lows[:, None, :],
            ).all(axis=2)
            if plan == SHARD_SKIPPED:
                assert not overlaps.any()
            else:
                assert overlaps.any()
        np.testing.assert_allclose(
            result.answers,
            engine_answers(private, lows, highs, plan=PLAN_BROADCAST),
            rtol=0,
            atol=1e-9,
        )

    def test_full_domain_queries_skip_nothing(self):
        private = grid_private()
        lows, highs = boxes_to_arrays([full_box((256, 256))])
        result = sharded_evidence(private, lows, highs, n_shards=4)
        assert result.skipped_shards == 0

    def test_query_answer_carries_shard_evidence(self):
        """The facade's QueryAnswer exposes the per-shard plans."""
        private = grid_private()
        rng = np.random.default_rng(17)
        lows = np.stack(
            [rng.integers(0, 16, size=50), rng.integers(0, 256, size=50)],
            axis=1,
        ).astype(np.int64)
        highs = np.minimum(lows + 2, [[255, 255]])
        answer = Engine(private, EngineConfig(n_shards=8)).answer(
            QueryRequest(lows, highs)
        )
        evidence = sharded_evidence(private, lows, highs, n_shards=8)
        assert answer.shard_plans == evidence.plans
        assert answer.shard_bounds == evidence.bounds
        assert answer.skipped_shards == evidence.skipped_shards > 0
        assert answer.skip_rate == evidence.skip_rate


class TestShardExecutors:
    """Shards compute identical partials serially and across a pool."""

    def test_process_pool_matches_serial(self):
        private = grid_private(shape=(64, 64), m=16)
        rng = np.random.default_rng(11)
        lows, highs = boxes_to_arrays(
            degenerate_and_random_queries((64, 64), rng, n_random=20)
        )
        serial = sharded_evidence(private, lows, highs, n_shards=3)
        pooled = sharded_evidence(
            private, lows, highs, n_shards=3,
            executor=ProcessPoolTrialExecutor(2),
        )
        np.testing.assert_array_equal(serial.answers, pooled.answers)
        assert serial.plans == pooled.plans
        assert serial.bounds == pooled.bounds

    def test_executor_map_preserves_order(self):
        items = list(range(7))
        assert ProcessPoolTrialExecutor(2).map(abs, items) == items

    def test_shards_are_cached_per_effective_count(self):
        packed = grid_private(shape=(64, 64), m=16).packed
        first = packed.split_shards(4)
        assert packed.split_shards(4) is first  # same objects, same indexes
        # A request clipping to the same effective count shares the entry.
        small = grid_private(shape=(16, 16), m=2).packed  # 4 partitions
        assert small.split_shards(9) is small.split_shards(100)
        # Repeated batches must not rebuild shards (the cached objects
        # carry their lazily built interval indexes with them).
        lows, highs = boxes_to_arrays(
            degenerate_and_random_queries(
                (64, 64), np.random.default_rng(12), n_random=5
            )
        )
        packed.answer_sharded_arrays(lows, highs, n_shards=4)
        assert packed.split_shards(4) is first


class TestResidentPool:
    """Sixth column: the resident shm worker pool ≡ serial, bit for bit.

    Workers answer over shared-memory views of the *same* shard arrays
    the serial path reads and never touch RNG state, so the comparison
    is exact equality (``assert_array_equal``) — any nonzero diff means
    a worker re-derived something it should have shared.
    """

    @pytest.mark.parametrize("method", METHODS)
    def test_resident_matches_serial_across_shard_counts(self, method):
        private = sanitized_private(method, (28, 26), 11, 13, 0.5)
        lows, highs = boxes_to_arrays(
            degenerate_and_random_queries(
                (28, 26), np.random.default_rng(2), n_random=15
            )
        )
        for n_shards in SHARD_COUNTS:
            serial = sharded_evidence(
                private, lows, highs, n_shards=n_shards, executor="serial"
            )
            engine = Engine(
                private,
                EngineConfig(n_shards=n_shards, shard_executor="resident"),
            )
            try:
                resident = engine.answer_sharded(lows, highs)
                # The facade route reuses the same (already-warm) pool.
                answer = engine.answer(QueryRequest(lows, highs))
            finally:
                engine.close()
            np.testing.assert_array_equal(
                resident.answers, serial.answers,
                err_msg=f"resident(K={n_shards}, {method}) != serial",
            )
            assert resident.plans == serial.plans
            assert resident.bounds == serial.bounds
            np.testing.assert_array_equal(answer.answers, serial.answers)
            assert answer.plan == PLAN_SHARDED
            assert answer.shard_plans == serial.plans

    def test_resident_empty_batch_reports_skips_without_dispatch(self):
        private = grid_private(shape=(16, 16), m=4)
        empty = np.empty((0, 2), dtype=np.int64)
        engine = Engine(
            private, EngineConfig(n_shards=3, shard_executor="resident")
        )
        try:
            result = engine.answer_sharded(empty, empty)
            assert result.answers.size == 0
            assert result.skipped_shards == result.n_shards == 3
            stats = engine.pool_stats()
            assert stats["worker_batches"] == [0, 0, 0]  # never dispatched
        finally:
            engine.close()

    @pytest.mark.skipif(
        ENV_SHARD_EXECUTOR is None,
        reason="REPRO_ENGINE_SHARD_EXECUTOR not set",
    )
    def test_env_forced_executor_is_exercised(self):
        """The CI resident leg's env-forced executor flows end to end."""
        private = sanitized_private("quadtree", (24, 24), 9, 7, 0.5)
        lows, highs = boxes_to_arrays(
            degenerate_and_random_queries(
                (24, 24), np.random.default_rng(6), n_random=10
            )
        )
        config = EngineConfig.from_env()
        assert config.shard_executor == ENV_SHARD_EXECUTOR
        engine = Engine(private, config)
        try:
            answer = engine.answer(QueryRequest(lows, highs))
        finally:
            engine.close()
        assert answer.plan == PLAN_SHARDED  # executor alone selects it
        np.testing.assert_allclose(
            answer.answers,
            engine_answers(private, lows, highs, plan=PLAN_BROADCAST),
            rtol=0,
            atol=1e-9,
        )


class TestForcedPrunedFallback:
    """Regression: forcing ``pruned`` below the threshold must not error."""

    def test_choose_packed_plan_falls_back(self):
        private = grid_private(shape=(16, 16), m=4)  # 16 partitions
        assert private.n_partitions < PRUNE_MIN_PARTITIONS
        lows, highs = boxes_to_arrays(
            degenerate_and_random_queries(
                (16, 16), np.random.default_rng(0), n_random=5
            )
        )
        assert (
            choose_packed_plan(private.packed, lows, highs, force=PLAN_PRUNED)
            == PLAN_BROADCAST
        )

    def test_engine_reports_the_fallback(self):
        private = grid_private(shape=(16, 16), m=4)
        lows, highs = boxes_to_arrays(
            degenerate_and_random_queries(
                (16, 16), np.random.default_rng(1), n_random=5
            )
        )
        answer = Engine(private, EngineConfig(plan=PLAN_PRUNED)).answer(
            QueryRequest(lows, highs)
        )
        assert answer.plan == PLAN_BROADCAST  # fell back, and says so
        np.testing.assert_allclose(
            answer.answers,
            engine_answers(private, lows, highs, plan=PLAN_BROADCAST),
            rtol=0,
            atol=1e-9,
        )

    def test_force_honored_above_threshold(self):
        private = grid_private()  # 4096 partitions
        lows, highs = boxes_to_arrays(
            degenerate_and_random_queries(
                (256, 256), np.random.default_rng(2), n_random=5
            )
        )
        assert (
            choose_packed_plan(private.packed, lows, highs, force=PLAN_PRUNED)
            == PLAN_PRUNED
        )
        answer = Engine(private, EngineConfig(plan=PLAN_PRUNED)).answer(
            QueryRequest(lows, highs)
        )
        assert answer.plan == PLAN_PRUNED

    def test_unknown_force_rejected(self):
        private = grid_private(shape=(16, 16), m=4)
        one = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(QueryError, match="unknown packed query plan"):
            choose_packed_plan(private.packed, one, one, force="sideways")
        with pytest.raises(QueryError, match="unknown packed query plan"):
            EngineConfig(plan="sideways")


class TestEvaluatorAndRunnerPlumbing:
    """The sharded engine reached through the evaluation stack."""

    def test_evaluator_records_sharded_plan(self):
        rng = np.random.default_rng(5)
        matrix = FrequencyMatrix(rng.poisson(3.0, (24, 24)).astype(float))
        private = get_sanitizer("kdtree").sanitize(matrix, 0.5, 7)
        workload = random_workload(matrix.shape, 40, rng=3)
        plain = WorkloadEvaluator(matrix).evaluate(private, workload)
        sharded = WorkloadEvaluator(matrix, n_shards=3).evaluate(
            private, workload
        )
        assert sharded.plan == PLAN_SHARDED
        assert len(sharded.shard_plans) == min(3, private.n_partitions)
        assert sharded.report.mre == pytest.approx(plain.report.mre, abs=1e-6)

    def test_evaluator_engine_config_matches_legacy_kwargs(self):
        rng = np.random.default_rng(15)
        matrix = FrequencyMatrix(rng.poisson(3.0, (24, 24)).astype(float))
        private = get_sanitizer("quadtree").sanitize(matrix, 0.5, 7)
        workload = random_workload(matrix.shape, 30, rng=3)
        legacy = WorkloadEvaluator(matrix, n_shards=3).evaluate(
            private, workload
        )
        explicit = WorkloadEvaluator(
            matrix, engine_config=EngineConfig(n_shards=3)
        ).evaluate(private, workload)
        assert legacy == explicit
        with pytest.raises(QueryError, match="not both"):
            WorkloadEvaluator(
                matrix, n_shards=3, engine_config=EngineConfig()
            )

    def test_evaluator_shard_executor_alone_selects_sharded(self):
        # Matching the engine's config semantics: configuring only the
        # executor still routes through the sharded plan (at the
        # default shard count).
        rng = np.random.default_rng(13)
        matrix = FrequencyMatrix(rng.poisson(3.0, (24, 24)).astype(float))
        private = get_sanitizer("kdtree").sanitize(matrix, 0.5, 7)
        workload = random_workload(matrix.shape, 30, rng=3)

        class CountingMap:
            calls = 0

            def map(self, fn, items):
                CountingMap.calls += 1
                return [fn(item) for item in items]

        result = WorkloadEvaluator(
            matrix, shard_executor=CountingMap()
        ).evaluate(private, workload)
        assert result.plan == PLAN_SHARDED
        assert CountingMap.calls == 1

    def test_evaluator_keeps_dense_route_for_dense_backed(self):
        rng = np.random.default_rng(6)
        matrix = FrequencyMatrix(rng.poisson(3.0, (16, 16)).astype(float))
        private = get_sanitizer("identity").sanitize(matrix, 0.5, 7)
        workload = random_workload(matrix.shape, 20, rng=3)
        result = WorkloadEvaluator(matrix, n_shards=3).evaluate(
            private, workload
        )
        assert result.plan == PLAN_DENSE
        assert result.shard_plans == ()

    def test_run_methods_n_shards_stamps_rows(self):
        from repro.experiments import default_method_specs, run_methods

        rng = np.random.default_rng(8)
        matrix = FrequencyMatrix(rng.poisson(3.0, (20, 20)).astype(float))
        workload = random_workload(matrix.shape, 25, rng=4)
        rows = run_methods(
            matrix,
            default_method_specs(["kdtree", "identity"]),
            [0.5],
            [workload],
            rng=1,
            n_shards=2,
        )
        plans = {r.method: r.plan for r in rows}
        assert plans["kdtree"] == PLAN_SHARDED
        assert plans["identity"] == PLAN_DENSE  # dense-backed: no shards

    def test_run_methods_engine_config_equivalent_and_exclusive(self):
        from repro.experiments import default_method_specs, run_methods
        from repro.core import ValidationError

        rng = np.random.default_rng(21)
        matrix = FrequencyMatrix(rng.poisson(3.0, (20, 20)).astype(float))
        workload = random_workload(matrix.shape, 25, rng=4)
        specs = default_method_specs(["kdtree"])
        legacy = run_methods(
            matrix, specs, [0.5], [workload], rng=1, n_shards=2
        )
        explicit = run_methods(
            matrix, specs, [0.5], [workload], rng=1,
            engine_config=EngineConfig(n_shards=2),
        )
        assert [r.report for r in legacy] == [r.report for r in explicit]
        assert [r.plan for r in legacy] == [r.plan for r in explicit]
        with pytest.raises(ValidationError, match="not both"):
            run_methods(
                matrix, specs, [0.5], [workload], rng=1,
                n_shards=2, engine_config=EngineConfig(n_shards=2),
            )

    @pytest.mark.skipif(
        ENV_N_SHARDS is None, reason="REPRO_TEST_N_SHARDS not set"
    )
    def test_env_forced_shard_count_is_exercised(self):
        """The CI leg's env-forced K flows through the evaluator stack."""
        rng = np.random.default_rng(9)
        matrix = FrequencyMatrix(rng.poisson(3.0, (24, 24)).astype(float))
        private = get_sanitizer("quadtree").sanitize(matrix, 0.5, 7)
        lows, highs = random_workload(matrix.shape, 30, rng=5).as_arrays()
        result = sharded_evidence(private, lows, highs, n_shards=ENV_N_SHARDS)
        assert result.n_shards == min(ENV_N_SHARDS, private.n_partitions)
        np.testing.assert_allclose(
            result.answers,
            engine_answers(private, lows, highs, plan=PLAN_BROADCAST),
            rtol=0,
            atol=1e-9,
        )


def test_answer_sharded_function_matches_method():
    """The module-level entry point and packed method agree."""
    private = grid_private(shape=(64, 64), m=16)
    lows, highs = boxes_to_arrays(
        degenerate_and_random_queries(
            (64, 64), np.random.default_rng(10), n_random=10
        )
    )
    via_fn = answer_sharded(private.packed, lows, highs, n_shards=5)
    via_method = private.packed.answer_sharded_arrays(
        lows, highs, n_shards=5
    )
    np.testing.assert_array_equal(via_fn.answers, via_method.answers)
    assert len(split_shards(private.packed, 5)) == 5
