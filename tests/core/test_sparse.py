"""Tests for repro.core.sparse."""

import numpy as np
import pytest

from repro.core import FrequencyMatrix, SparseFrequencyMatrix, ValidationError


class TestBasics:
    def test_empty(self):
        sm = SparseFrequencyMatrix((4, 4))
        assert sm.total == 0.0
        assert sm.n_nonzero == 0
        assert len(sm) == 0

    def test_increment_and_get(self):
        sm = SparseFrequencyMatrix((4, 4))
        sm.increment((1, 2))
        sm.increment((1, 2), 2.5)
        assert sm.get((1, 2)) == 3.5
        assert sm.get((0, 0)) == 0.0
        assert sm.n_nonzero == 1

    def test_increment_zero_is_noop(self):
        sm = SparseFrequencyMatrix((4, 4))
        sm.increment((0, 0), 0.0)
        assert sm.n_nonzero == 0

    def test_increment_rejects_negative(self):
        sm = SparseFrequencyMatrix((4, 4))
        with pytest.raises(ValidationError):
            sm.increment((0, 0), -1.0)

    def test_increment_rejects_out_of_range(self):
        sm = SparseFrequencyMatrix((4, 4))
        with pytest.raises(ValidationError):
            sm.increment((4, 0))
        with pytest.raises(ValidationError):
            sm.increment((0, -1))

    def test_increment_rejects_wrong_arity(self):
        sm = SparseFrequencyMatrix((4, 4))
        with pytest.raises(ValidationError):
            sm.increment((0,))

    def test_domain_shape_mismatch_rejected(self):
        from repro.core import Domain
        with pytest.raises(ValidationError):
            SparseFrequencyMatrix((4, 4), Domain.regular((3, 3)))


class TestIncrementMany:
    def test_counts_duplicates(self):
        sm = SparseFrequencyMatrix((4, 4))
        cells = np.array([[0, 0], [0, 0], [1, 1]])
        sm.increment_many(cells)
        assert sm.get((0, 0)) == 2.0
        assert sm.get((1, 1)) == 1.0
        assert sm.total == 3.0

    def test_accumulates_across_calls(self):
        sm = SparseFrequencyMatrix((4, 4))
        sm.increment_many(np.array([[0, 0]]))
        sm.increment_many(np.array([[0, 0]]))
        assert sm.get((0, 0)) == 2.0

    def test_rejects_out_of_range(self):
        sm = SparseFrequencyMatrix((4, 4))
        with pytest.raises(ValidationError):
            sm.increment_many(np.array([[0, 9]]))

    def test_rejects_wrong_shape(self):
        sm = SparseFrequencyMatrix((4, 4))
        with pytest.raises(ValidationError):
            sm.increment_many(np.array([0, 1]))


class TestDensify:
    def test_roundtrip(self, rng):
        sm = SparseFrequencyMatrix((5, 5, 5))
        cells = rng.integers(0, 5, size=(200, 3))
        sm.increment_many(cells)
        dense = sm.to_dense()
        assert dense.total == 200.0
        back = SparseFrequencyMatrix.from_dense(dense)
        assert back.total == 200.0
        assert back.n_nonzero == sm.n_nonzero

    def test_limit_enforced(self):
        sm = SparseFrequencyMatrix((100, 100, 100))
        with pytest.raises(ValidationError):
            sm.to_dense(limit=1000)

    def test_from_dense_keeps_only_nonzero(self):
        fm = FrequencyMatrix([[0.0, 3.0], [0.0, 0.0]])
        sm = SparseFrequencyMatrix.from_dense(fm)
        assert sm.n_nonzero == 1
        assert sm.get((0, 1)) == 3.0


class TestCoarsen:
    def test_exact_halving(self):
        sm = SparseFrequencyMatrix((4, 4))
        sm.increment((0, 0), 1.0)
        sm.increment((1, 1), 2.0)
        sm.increment((3, 3), 4.0)
        coarse = sm.coarsen((2, 2))
        assert coarse.get((0, 0)) == 3.0
        assert coarse.get((1, 1)) == 4.0
        assert coarse.total == sm.total

    def test_coarsen_to_one(self):
        sm = SparseFrequencyMatrix((8,))
        for i in range(8):
            sm.increment((i,), float(i))
        coarse = sm.coarsen((1,))
        assert coarse.get((0,)) == sum(range(8))

    def test_rejects_refining(self):
        sm = SparseFrequencyMatrix((4, 4))
        with pytest.raises(ValidationError):
            sm.coarsen((8, 4))

    def test_rejects_dimensionality_change(self):
        sm = SparseFrequencyMatrix((4, 4))
        with pytest.raises(ValidationError):
            sm.coarsen((4,))

    def test_total_preserved_uneven(self, rng):
        sm = SparseFrequencyMatrix((10, 10))
        sm.increment_many(rng.integers(0, 10, size=(300, 2)))
        coarse = sm.coarsen((3, 7))
        assert coarse.total == pytest.approx(sm.total)
