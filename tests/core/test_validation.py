"""Tests for repro.core.validation."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.core.validation import (
    require_count_array,
    require_fraction,
    require_positive_float,
    require_positive_int,
    require_shape,
)


class TestRequirePositiveInt:
    def test_accepts_int(self):
        assert require_positive_int(5, "x") == 5

    def test_accepts_numpy_int(self):
        assert require_positive_int(np.int64(3), "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            require_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            require_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            require_positive_int(3.0, "x")

    def test_error_mentions_name(self):
        with pytest.raises(ValidationError, match="budget"):
            require_positive_int(-1, "budget")


class TestRequirePositiveFloat:
    def test_accepts_float(self):
        assert require_positive_float(0.5, "x") == 0.5

    def test_accepts_int(self):
        assert require_positive_float(2, "x") == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            require_positive_float(0.0, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            require_positive_float(float("inf"), "x")

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            require_positive_float("abc", "x")


class TestRequireFraction:
    def test_open_interval(self):
        assert require_fraction(0.3, "q") == 0.3
        with pytest.raises(ValidationError):
            require_fraction(0.0, "q")
        with pytest.raises(ValidationError):
            require_fraction(1.0, "q")

    def test_inclusive(self):
        assert require_fraction(0.0, "q", inclusive=True) == 0.0
        assert require_fraction(1.0, "q", inclusive=True) == 1.0
        with pytest.raises(ValidationError):
            require_fraction(1.1, "q", inclusive=True)


class TestRequireShape:
    def test_normalizes(self):
        assert require_shape([3, np.int64(4)]) == (3, 4)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            require_shape([])

    def test_rejects_zero_dim(self):
        with pytest.raises(ValidationError):
            require_shape([3, 0])

    def test_rejects_nonsense(self):
        with pytest.raises(ValidationError):
            require_shape("abc")  # letters are not ints


class TestRequireCountArray:
    def test_returns_float64(self):
        arr = require_count_array([[1, 2]])
        assert arr.dtype == np.float64

    def test_rejects_scalar(self):
        with pytest.raises(ValidationError):
            require_count_array(np.float64(1.0))

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            require_count_array([-0.5])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            require_count_array([float("inf")])
