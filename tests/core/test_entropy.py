"""Tests for repro.core.entropy (paper Def. 4, Eq. 14-17)."""

import math

import numpy as np
import pytest

from repro.core import (
    FrequencyMatrix,
    Partition,
    Partitioning,
    ValidationError,
    distribution_entropy,
    information_loss,
    laplace_noise_entropy,
    matrix_entropy,
    partition_entropy,
    partitioned_entropy_approximation,
    uniform_entropy_approximation,
)


class TestDistributionEntropy:
    def test_uniform_distribution(self):
        assert distribution_entropy([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_point_mass_is_zero(self):
        assert distribution_entropy([0, 7, 0]) == 0.0

    def test_empty_is_zero(self):
        assert distribution_entropy([]) == 0.0

    def test_all_zero_is_zero(self):
        assert distribution_entropy([0.0, 0.0]) == 0.0

    def test_scale_invariance(self):
        a = distribution_entropy([1, 2, 3])
        b = distribution_entropy([10, 20, 30])
        assert a == pytest.approx(b)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            distribution_entropy([1, -1])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            distribution_entropy([1, float("nan")])

    def test_known_value(self):
        # H(0.25, 0.75) = 0.811278...
        assert distribution_entropy([1, 3]) == pytest.approx(0.8112781, abs=1e-6)


class TestMatrixEntropy:
    def test_uniform_matrix(self):
        fm = FrequencyMatrix(np.ones((4, 4)))
        assert matrix_entropy(fm) == pytest.approx(4.0)  # log2(16)

    def test_partition_entropy_single_partition_is_zero(self, small_2d):
        pt = Partitioning.single(small_2d.shape, 0.0)
        assert partition_entropy(small_2d, pt) == 0.0

    def test_partition_entropy_of_halves(self):
        fm = FrequencyMatrix(np.ones((4, 4)))
        parts = [
            Partition(((0, 1), (0, 3)), 0.0),
            Partition(((2, 3), (0, 3)), 0.0),
        ]
        pt = Partitioning(parts, (4, 4))
        assert partition_entropy(fm, pt) == pytest.approx(1.0)

    def test_information_loss_nonnegative(self, skewed_2d):
        pt = Partitioning.single(skewed_2d.shape, 0.0)
        assert information_loss(skewed_2d, pt) >= -1e-9

    def test_information_loss_zero_for_identity_partitioning(self):
        fm = FrequencyMatrix(np.array([[1.0, 2.0], [3.0, 4.0]]))
        parts = [
            Partition(((i, i), (j, j)), 0.0)
            for i in range(2) for j in range(2)
        ]
        pt = Partitioning(parts, (2, 2))
        assert information_loss(fm, pt) == pytest.approx(0.0)


class TestApproximations:
    def test_uniform_entropy_approximation(self):
        assert uniform_entropy_approximation(1024.0) == pytest.approx(10.0)

    def test_uniform_entropy_clamped(self):
        assert uniform_entropy_approximation(0.5) == 0.0
        assert uniform_entropy_approximation(-10.0) == 0.0

    def test_partitioned_entropy_approximation(self):
        assert partitioned_entropy_approximation(4, 3) == pytest.approx(6.0)

    def test_partitioned_entropy_validates(self):
        with pytest.raises(ValidationError):
            partitioned_entropy_approximation(0.5, 2)
        with pytest.raises(ValidationError):
            partitioned_entropy_approximation(2, 0)

    def test_laplace_noise_entropy_matches_formula(self):
        # Eq. 14: -log2(eps / (sqrt(2) m^{d/2})) = log2(sqrt(2) m^{d/2}/eps)
        got = laplace_noise_entropy(m=16, ndim=2, epsilon=0.5)
        expected = math.log2(math.sqrt(2) * 16 / 0.5)
        assert got == pytest.approx(expected)

    def test_laplace_noise_entropy_monotone_in_m(self):
        a = laplace_noise_entropy(4, 2, 0.1)
        b = laplace_noise_entropy(8, 2, 0.1)
        assert b > a

    def test_laplace_noise_entropy_validates(self):
        with pytest.raises(ValidationError):
            laplace_noise_entropy(4, 2, 0.0)
        with pytest.raises(ValidationError):
            laplace_noise_entropy(0.5, 2, 0.1)

    def test_ebp_balance_point(self):
        # At the EBP optimum m* = (N eps / sqrt 2)^(2/(3d)), noise entropy
        # equals the approximate information loss (Eq. 18).
        n, eps, d = 1e6, 0.1, 2
        m_star = (n * eps / math.sqrt(2)) ** (2 / (3 * d))
        noise = laplace_noise_entropy(m_star, d, eps)
        info_loss = (
            uniform_entropy_approximation(n)
            - partitioned_entropy_approximation(m_star, d)
        )
        assert noise == pytest.approx(info_loss, rel=1e-9)
