"""Tests for repro.core.packed: the array-backed partitioning engine.

The central property: the vectorized kernel must match the scalar
reference (`Partition.uniform_answer` summed in a loop) within 1e-9 on
arbitrary partitionings — random recursive tilings in 1 to 4 dimensions,
including empty and negative-count partitions and single-cell queries.
"""

import numpy as np
import pytest

from repro.core import (
    PackedPartitioning,
    Partition,
    Partitioning,
    PartitioningError,
    PrivateFrequencyMatrix,
    QueryError,
    boxes_to_arrays,
    full_box,
    grid_boxes,
    packed_from_intervals,
    validate_box_arrays,
)


def random_tiling(shape, rng, n_splits=12):
    """An irregular exact tiling built by repeated random box splits."""
    boxes = [full_box(shape)]
    for _ in range(n_splits):
        i = int(rng.integers(len(boxes)))
        box = boxes[i]
        splittable = [a for a, (lo, hi) in enumerate(box) if hi > lo]
        if not splittable:
            continue
        axis = int(rng.choice(splittable))
        lo, hi = box[axis]
        cut = int(rng.integers(lo + 1, hi + 1))
        left = tuple((lo, cut - 1) if a == axis else r for a, r in enumerate(box))
        right = tuple((cut, hi) if a == axis else r for a, r in enumerate(box))
        boxes[i] = left
        boxes.append(right)
    return boxes


def random_packed(shape, rng, n_splits=12):
    """A random tiling with signed noisy counts (some zero, some negative)."""
    boxes = random_tiling(shape, rng, n_splits)
    noisy = rng.normal(0.0, 50.0, size=len(boxes))
    noisy[rng.random(len(boxes)) < 0.2] = 0.0  # some "empty" partitions
    true = np.abs(rng.normal(0.0, 50.0, size=len(boxes)))
    lows, highs = boxes_to_arrays(boxes)
    packed = PackedPartitioning(lows, highs, noisy, shape, true)
    return packed, boxes, noisy


def random_boxes(shape, rng, n):
    """Random inclusive query boxes, a fifth of them single-cell."""
    out = []
    for i in range(n):
        box = []
        for s in shape:
            a = int(rng.integers(0, s))
            if i % 5 == 0:
                b = a  # single-cell on every axis
            else:
                b = int(rng.integers(0, s))
            box.append((min(a, b), max(a, b)))
        out.append(tuple(box))
    return out


SHAPES = [(64,), (13, 17), (7, 6, 5), (5, 4, 3, 4)]


class TestKernelMatchesScalar:
    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{len(s)}d")
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_vectorized_matches_scalar_reference(self, shape, seed):
        rng = np.random.default_rng(seed)
        packed, boxes, noisy = random_packed(shape, rng)
        parts = [Partition(b, c) for b, c in zip(boxes, noisy)]
        queries = random_boxes(shape, rng, 60)
        vec = packed.answer_many(queries)
        ref = np.array(
            [sum(p.uniform_answer(q) for p in parts) for q in queries]
        )
        np.testing.assert_allclose(vec, ref, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{len(s)}d")
    def test_both_private_matrix_engines_match_scalar(self, shape):
        rng = np.random.default_rng(7)
        packed, _, _ = random_packed(shape, rng)
        priv = PrivateFrequencyMatrix.from_packed(packed)
        queries = random_boxes(shape, rng, 40)
        scalar = np.array([priv.answer(q) for q in queries])
        # Geometric kernel (few queries -> no dense switch).
        np.testing.assert_allclose(
            priv.answer_many(queries), scalar, rtol=0, atol=1e-9
        )
        # Dense prefix-sum engine.
        lows, highs = boxes_to_arrays(queries)
        np.testing.assert_allclose(
            priv._prefix_table().query_arrays(lows, highs),
            scalar,
            rtol=0,
            atol=1e-9,
        )

    def test_tiling_does_not_change_answers(self):
        rng = np.random.default_rng(3)
        packed, _, _ = random_packed((20, 20), rng, n_splits=30)
        queries = random_boxes((20, 20), rng, 50)
        lows, highs = boxes_to_arrays(queries)
        full = packed.answer_many_arrays(lows, highs)
        tiled = packed.answer_many_arrays(lows, highs, tile_elements=64)
        # Tiling changes BLAS summation shapes, so only bit-level float
        # reassociation noise is tolerated.
        np.testing.assert_allclose(full, tiled, rtol=0, atol=1e-9)

    def test_empty_query_batch(self):
        rng = np.random.default_rng(0)
        packed, _, _ = random_packed((8, 8), rng)
        assert packed.answer_many([]).size == 0


class TestValidation:
    def test_exact_cover_accepted(self):
        lows, highs = boxes_to_arrays(grid_boxes((6, 6), (3, 2)))
        PackedPartitioning(lows, highs, np.zeros(6), (6, 6))

    def test_overlap_rejected(self):
        # Cell counts sum to the matrix size, so only the pairwise
        # disjointness check can catch the overlap.
        boxes = [((0, 3),), ((2, 5),)]
        lows, highs = boxes_to_arrays(boxes)
        with pytest.raises(PartitioningError, match="overlap"):
            PackedPartitioning(lows, highs, np.zeros(2), (8,))

    def test_coverage_gap_rejected(self):
        boxes = [((0, 2),), ((4, 7),)]
        lows, highs = boxes_to_arrays(boxes)
        with pytest.raises(PartitioningError, match="cover"):
            PackedPartitioning(lows, highs, np.zeros(2), (8,))

    def test_out_of_bounds_rejected(self):
        lows, highs = boxes_to_arrays([((0, 8),)])
        with pytest.raises(PartitioningError, match="outside"):
            PackedPartitioning(lows, highs, np.zeros(1), (8,))

    def test_empty_rejected(self):
        with pytest.raises(PartitioningError, match="at least one"):
            PackedPartitioning(
                np.empty((0, 1), np.int64),
                np.empty((0, 1), np.int64),
                np.zeros(0),
                (4,),
            )

    def test_count_shape_mismatch_rejected(self):
        lows, highs = boxes_to_arrays([full_box((4,))])
        with pytest.raises(PartitioningError, match="noisy_counts"):
            PackedPartitioning(lows, highs, np.zeros(3), (4,))

    def test_validate_box_arrays_rejects_bad_batches(self):
        good_lo = np.array([[0, 0]])
        good_hi = np.array([[3, 3]])
        validate_box_arrays(good_lo, good_hi, (4, 4))
        with pytest.raises(QueryError, match="lo > hi"):
            validate_box_arrays(good_hi, good_lo, (4, 4))
        with pytest.raises(QueryError, match="outside"):
            validate_box_arrays(good_lo, good_hi, (3, 3))
        with pytest.raises(QueryError, match="dimensions"):
            validate_box_arrays(good_lo, good_hi, (4, 4, 4))


class TestConversions:
    def test_roundtrip_through_partitioning(self):
        rng = np.random.default_rng(11)
        packed, _, _ = random_packed((10, 10), rng)
        back = PackedPartitioning.from_partitioning(
            packed.to_partitioning(validate=True)
        )
        np.testing.assert_array_equal(back.lo, packed.lo)
        np.testing.assert_array_equal(back.hi, packed.hi)
        np.testing.assert_array_equal(back.noisy_counts, packed.noisy_counts)
        np.testing.assert_array_equal(back.true_counts, packed.true_counts)

    def test_packed_from_intervals_matches_grid_boxes(self):
        shape = (6, 8)
        boxes = grid_boxes(shape, (3, 4))
        intervals_per_dim = [
            sorted({b[0] for b in boxes}),
            sorted({b[1] for b in boxes}),
        ]
        counts = np.arange(len(boxes), dtype=np.float64)
        packed = packed_from_intervals(intervals_per_dim, counts, shape)
        assert packed.boxes() == boxes

    def test_dense_array_matches_object_path(self):
        rng = np.random.default_rng(4)
        packed, boxes, noisy = random_packed((9, 9), rng)
        parts = [Partition(b, c) for b, c in zip(boxes, noisy)]
        expected = np.zeros((9, 9))
        for p in parts:
            (r0, r1), (c0, c1) = p.box
            expected[r0 : r1 + 1, c0 : c1 + 1] = p.noisy_count / p.n_cells
        np.testing.assert_allclose(packed.dense_array(), expected)


class TestPrivateMatrixIntegration:
    def test_lazy_partition_materialization(self):
        rng = np.random.default_rng(5)
        packed, boxes, _ = random_packed((12, 12), rng)
        priv = PrivateFrequencyMatrix.from_packed(packed, method="m", epsilon=1.0)
        assert not priv.is_dense_backed
        assert priv.n_partitions == len(boxes)
        assert priv._partitioning is None  # not built yet
        assert len(priv.partitions) == len(boxes)  # materializes on demand
        assert priv._partitioning is not None

    def test_packed_view_of_object_backed_matrix(self):
        parts = [
            Partition(((0, 1), (0, 3)), 8.0, 7.0),
            Partition(((2, 3), (0, 3)), 4.0, 5.0),
        ]
        priv = PrivateFrequencyMatrix(Partitioning(parts, (4, 4)))
        assert priv.packed.n_partitions == 2
        assert priv.packed.total_noisy_count == pytest.approx(12.0)

    def test_publishable_roundtrip_from_packed(self):
        rng = np.random.default_rng(6)
        packed, _, _ = random_packed((8, 8), rng)
        priv = PrivateFrequencyMatrix.from_packed(packed, epsilon=0.5, method="x")
        payload = priv.to_publishable()
        assert all("true" not in k for p in payload["partitions"] for k in p)
        back = PrivateFrequencyMatrix.from_publishable(payload)
        assert back.n_partitions == packed.n_partitions
        assert back.answer(full_box((8, 8))) == pytest.approx(
            packed.total_noisy_count
        )
