"""Tests for repro.core.consistency post-processing."""

import numpy as np
import pytest

from repro.core import (
    Partition,
    Partitioning,
    PrivateFrequencyMatrix,
    ValidationError,
    clip_nonnegative,
    full_box,
    project_nonnegative_total,
    rescale_to_total,
)


def private_with_counts(counts):
    """1-D partition-backed private matrix with one cell per partition."""
    parts = [
        Partition(((i, i),), float(c)) for i, c in enumerate(counts)
    ]
    return PrivateFrequencyMatrix(
        Partitioning(parts, (len(counts),)), epsilon=1.0, method="test"
    )


class TestClipNonnegative:
    def test_negatives_zeroed(self):
        private = private_with_counts([3.0, -2.0, 5.0])
        clipped = clip_nonnegative(private)
        values = [p.noisy_count for p in clipped.partitions]
        assert values == [3.0, 0.0, 5.0]

    def test_input_unchanged(self):
        private = private_with_counts([-1.0])
        clip_nonnegative(private)
        assert private.partitions[0].noisy_count == -1.0

    def test_dense_backed(self):
        private = PrivateFrequencyMatrix.from_dense_noisy(
            np.array([[-1.0, 2.0]]), epsilon=0.5, method="identity"
        )
        clipped = clip_nonnegative(private)
        assert clipped.is_dense_backed
        assert np.array_equal(clipped.dense_array(), [[0.0, 2.0]])

    def test_metadata_records_step(self):
        private = private_with_counts([1.0])
        out = clip_nonnegative(private)
        assert out.metadata["postprocessing"] == ["clip_nonnegative"]

    def test_chaining_records_all_steps(self):
        private = private_with_counts([1.0, -1.0])
        out = rescale_to_total(clip_nonnegative(private), 4.0)
        assert len(out.metadata["postprocessing"]) == 2


class TestRescaleToTotal:
    def test_scaling(self):
        private = private_with_counts([1.0, 3.0])
        out = rescale_to_total(private, 8.0)
        values = [p.noisy_count for p in out.partitions]
        assert values == [2.0, 6.0]

    def test_rejects_nonpositive_current(self):
        private = private_with_counts([-1.0, -2.0])
        with pytest.raises(ValidationError):
            rescale_to_total(private, 5.0)

    def test_rejects_nonfinite_target(self):
        private = private_with_counts([1.0])
        with pytest.raises(ValidationError):
            rescale_to_total(private, float("nan"))

    def test_epsilon_preserved(self):
        private = private_with_counts([1.0, 1.0])
        assert rescale_to_total(private, 5.0).epsilon == private.epsilon


class TestProjectNonnegativeTotal:
    def test_preserves_total_and_nonneg(self):
        private = private_with_counts([5.0, -2.0, 3.0])
        out = project_nonnegative_total(private)
        values = np.array([p.noisy_count for p in out.partitions])
        assert (values >= 0).all()
        assert values.sum() == pytest.approx(6.0)  # original total

    def test_explicit_target(self):
        private = private_with_counts([5.0, -2.0, 3.0])
        out = project_nonnegative_total(private, target_total=10.0)
        values = np.array([p.noisy_count for p in out.partitions])
        assert values.sum() == pytest.approx(10.0)
        assert (values >= 0).all()

    def test_all_negative_spreads_uniformly(self):
        private = private_with_counts([-3.0, -1.0])
        out = project_nonnegative_total(private, target_total=4.0)
        values = [p.noisy_count for p in out.partitions]
        assert values == pytest.approx([2.0, 2.0])

    def test_already_consistent_unchanged(self):
        private = private_with_counts([2.0, 3.0])
        out = project_nonnegative_total(private)
        values = [p.noisy_count for p in out.partitions]
        assert values == pytest.approx([2.0, 3.0])

    def test_improves_accuracy_on_sparse_data(self, rng):
        """On mostly-empty matrices, projection should reduce the error of
        the full-matrix query for identity outputs."""
        from repro.core import FrequencyMatrix
        from repro.methods import Identity
        data = np.zeros((32, 32))
        data[0, 0] = 500.0
        fm = FrequencyMatrix(data)
        fb = full_box(fm.shape)
        raw_err, proj_err = [], []
        for s in range(10):
            private = Identity().sanitize(fm, 0.5, np.random.default_rng(s))
            projected = project_nonnegative_total(private, target_total=500.0)
            raw_err.append(abs(private.answer(fb) - 500.0))
            proj_err.append(abs(projected.answer(fb) - 500.0))
        assert np.mean(proj_err) <= np.mean(raw_err) + 1e-6
