"""Tests for repro.core.partition."""

import numpy as np
import pytest

from repro.core import (
    Partition,
    Partitioning,
    PartitioningError,
    full_box,
    grid_boxes,
    split_interval,
)


class TestPartition:
    def test_basic_properties(self):
        p = Partition(((0, 3), (2, 2)), noisy_count=5.5, true_count=6.0)
        assert p.n_cells == 4
        assert p.ndim == 2
        assert p.noisy_count == 5.5
        assert p.true_count == 6.0

    def test_noisy_count_may_be_negative(self):
        p = Partition(((0, 0),), noisy_count=-3.2)
        assert p.noisy_count == -3.2

    def test_rejects_inverted_range(self):
        with pytest.raises(PartitioningError):
            Partition(((3, 1),), 0.0)

    def test_rejects_negative_lo(self):
        with pytest.raises(PartitioningError):
            Partition(((-1, 1),), 0.0)

    def test_contains_cell(self):
        p = Partition(((0, 3), (2, 5)), 0.0)
        assert p.contains_cell((0, 2))
        assert p.contains_cell((3, 5))
        assert not p.contains_cell((4, 2))
        assert not p.contains_cell((0, 6))

    def test_contains_cell_arity(self):
        with pytest.raises(PartitioningError):
            Partition(((0, 3),), 0.0).contains_cell((0, 0))

    def test_overlap_cells_disjoint(self):
        p = Partition(((0, 3), (0, 3)), 0.0)
        assert p.overlap_cells(((4, 7), (0, 3))) == 0

    def test_overlap_cells_partial(self):
        p = Partition(((0, 3), (0, 3)), 0.0)
        assert p.overlap_cells(((2, 5), (1, 2))) == 4  # rows 2-3 x cols 1-2

    def test_overlap_cells_contained(self):
        p = Partition(((0, 9), (0, 9)), 0.0)
        assert p.overlap_cells(((3, 4), (5, 5))) == 2

    def test_uniform_answer_proportional(self):
        p = Partition(((0, 3),), noisy_count=8.0)
        assert p.uniform_answer(((0, 1),)) == pytest.approx(4.0)
        assert p.uniform_answer(((0, 3),)) == pytest.approx(8.0)
        assert p.uniform_answer(((0, 0),)) == pytest.approx(2.0)

    def test_uniform_answer_zero_when_disjoint(self):
        p = Partition(((0, 3),), noisy_count=8.0)
        assert p.uniform_answer(((4, 5),)) == 0.0


class TestPartitioning:
    def test_single(self):
        pt = Partitioning.single((4, 4), noisy_count=10.0)
        assert len(pt) == 1
        assert pt[0].box == full_box((4, 4))
        assert pt.total_noisy_count == 10.0

    def test_valid_cover_accepted(self):
        parts = [
            Partition(((0, 1), (0, 3)), 1.0),
            Partition(((2, 3), (0, 1)), 2.0),
            Partition(((2, 3), (2, 3)), 3.0),
        ]
        pt = Partitioning(parts, (4, 4))
        assert len(pt) == 3
        assert pt.total_noisy_count == 6.0

    def test_gap_rejected(self):
        parts = [Partition(((0, 1), (0, 3)), 1.0)]
        with pytest.raises(PartitioningError):
            Partitioning(parts, (4, 4))

    def test_overlap_rejected(self):
        parts = [
            Partition(((0, 2), (0, 3)), 1.0),
            Partition(((2, 3), (0, 3)), 2.0),
        ]
        with pytest.raises(PartitioningError):
            Partitioning(parts, (4, 4))

    def test_double_cover_same_cell_count_rejected(self):
        # Two overlapping boxes whose total cell count equals the matrix:
        # the pairwise check must catch this.
        parts = [
            Partition(((0, 1),), 1.0),
            Partition(((1, 2),), 1.0),
        ]
        with pytest.raises(PartitioningError):
            Partitioning(parts, (4,))

    def test_out_of_bounds_rejected(self):
        parts = [Partition(((0, 4),), 1.0)]
        with pytest.raises(Exception):
            Partitioning(parts, (4,))

    def test_empty_rejected(self):
        with pytest.raises(PartitioningError):
            Partitioning([], (4,))

    def test_find(self):
        parts = [
            Partition(((0, 1),), 1.0),
            Partition(((2, 3),), 2.0),
        ]
        pt = Partitioning(parts, (4,))
        assert pt.find((0,)).noisy_count == 1.0
        assert pt.find((3,)).noisy_count == 2.0

    def test_find_missing(self):
        pt = Partitioning([Partition(((0, 3),), 1.0)], (4,), validate=False)
        with pytest.raises(PartitioningError):
            pt.find((9,))

    def test_iteration(self):
        pt = Partitioning.single((2, 2), 1.0)
        assert [p.noisy_count for p in pt] == [1.0]


class TestGridBoxes:
    def test_exact_division(self):
        boxes = grid_boxes((4, 4), (2, 2))
        assert len(boxes) == 4
        assert ((0, 1), (0, 1)) in boxes
        assert ((2, 3), (2, 3)) in boxes

    def test_uneven_division(self):
        boxes = grid_boxes((5,), (2,))
        # linspace(0, 5, 3) -> 0, 2.5, 5 -> cuts 0, 2, 5
        assert boxes == [((0, 1),), ((2, 4),)]

    def test_m_exceeding_size_clamps(self):
        boxes = grid_boxes((3,), (10,))
        assert boxes == [((0, 0),), ((1, 1),), ((2, 2),)]

    def test_m_one_is_whole_axis(self):
        boxes = grid_boxes((7, 3), (1, 3))
        assert len(boxes) == 3
        assert all(b[0] == (0, 6) for b in boxes)

    def test_boxes_tile_matrix(self):
        shape = (7, 5, 3)
        boxes = grid_boxes(shape, (3, 2, 2))
        covered = np.zeros(shape, dtype=int)
        for box in boxes:
            sl = tuple(slice(lo, hi + 1) for lo, hi in box)
            covered[sl] += 1
        assert (covered == 1).all()


class TestSplitInterval:
    def test_no_cuts(self):
        assert split_interval(2, 7, []) == [(2, 7)]

    def test_with_cuts(self):
        assert split_interval(0, 9, [3, 7]) == [(0, 2), (3, 6), (7, 9)]

    def test_cut_at_hi_allowed(self):
        assert split_interval(0, 4, [4]) == [(0, 3), (4, 4)]

    def test_cut_at_lo_rejected(self):
        with pytest.raises(PartitioningError):
            split_interval(0, 4, [0])

    def test_unsorted_cuts_rejected(self):
        with pytest.raises(PartitioningError):
            split_interval(0, 9, [7, 3])

    def test_duplicate_cuts_rejected(self):
        with pytest.raises(PartitioningError):
            split_interval(0, 9, [3, 3])

    def test_out_of_range_cut_rejected(self):
        with pytest.raises(PartitioningError):
            split_interval(0, 4, [9])
