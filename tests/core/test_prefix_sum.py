"""Tests for repro.core.prefix_sum."""

import numpy as np
import pytest

from repro.core import PrefixSumTable, QueryError, full_box


class TestPrefixSum1D:
    def test_single_cell(self):
        t = PrefixSumTable(np.array([1.0, 2.0, 3.0]))
        assert t.query(((1, 1),)) == 2.0

    def test_full_range(self):
        t = PrefixSumTable(np.array([1.0, 2.0, 3.0]))
        assert t.query(((0, 2),)) == 6.0

    def test_prefix(self):
        t = PrefixSumTable(np.array([1.0, 2.0, 3.0]))
        assert t.query(((0, 1),)) == 3.0

    def test_suffix(self):
        t = PrefixSumTable(np.array([1.0, 2.0, 3.0]))
        assert t.query(((1, 2),)) == 5.0


class TestPrefixSumND:
    @pytest.mark.parametrize("shape", [(5, 7), (3, 4, 5), (2, 3, 2, 3)])
    def test_matches_direct_sum(self, shape, rng):
        data = rng.poisson(2.0, size=shape).astype(float)
        t = PrefixSumTable(data)
        for _ in range(30):
            box = []
            for s in shape:
                a, b = sorted(rng.integers(0, s, size=2))
                box.append((int(a), int(b)))
            box = tuple(box)
            sl = tuple(slice(lo, hi + 1) for lo, hi in box)
            assert t.query(box) == pytest.approx(data[sl].sum())

    def test_full_box_equals_total(self, rng):
        data = rng.random((4, 6, 3))
        t = PrefixSumTable(data)
        assert t.query(full_box(data.shape)) == pytest.approx(data.sum())

    def test_query_many_matches_query(self, rng):
        data = rng.poisson(1.0, size=(8, 8)).astype(float)
        t = PrefixSumTable(data)
        boxes = []
        for _ in range(25):
            a, b = sorted(rng.integers(0, 8, size=2))
            c, d = sorted(rng.integers(0, 8, size=2))
            boxes.append(((int(a), int(b)), (int(c), int(d))))
        many = t.query_many(boxes)
        single = [t.query(b) for b in boxes]
        assert np.allclose(many, single)

    def test_query_many_empty(self):
        t = PrefixSumTable(np.zeros((2, 2)))
        assert t.query_many([]).size == 0

    def test_rejects_scalar(self):
        with pytest.raises(QueryError):
            PrefixSumTable(np.float64(3.0))

    def test_rejects_bad_box(self):
        t = PrefixSumTable(np.zeros((4, 4)))
        with pytest.raises(QueryError):
            t.query(((0, 4), (0, 0)))

    def test_negative_values_supported(self):
        # Private reconstructions contain signed values.
        data = np.array([[-1.0, 2.0], [3.0, -4.0]])
        t = PrefixSumTable(data)
        assert t.query(((0, 1), (0, 1))) == pytest.approx(0.0)
        assert t.query(((1, 1), (1, 1))) == pytest.approx(-4.0)
