"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_methods_command_parses(self):
        args = build_parser().parse_args(["methods"])
        assert args.command == "methods"

    def test_sanitize_defaults(self):
        args = build_parser().parse_args(["sanitize"])
        assert args.method == "daf_entropy"
        assert args.epsilon == 0.1

    def test_figure_validates_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "figure99"])

    def test_figure_n_shards_flag(self):
        args = build_parser().parse_args(
            ["figure", "table3", "--n-shards", "3"]
        )
        assert args.n_shards == 3
        assert build_parser().parse_args(["figure", "table3"]).n_shards is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.clients == 32
        assert args.queries_per_client == 4
        assert args.engine_config is None

    def test_serve_network_flags(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "8080", "--no-off-loop"]
        )
        assert args.host == "0.0.0.0"
        assert args.port == 8080
        assert args.off_loop is False
        defaults = build_parser().parse_args(["serve"])
        assert defaults.port is None  # no port: legacy smoke demo
        assert defaults.off_loop is True
        assert defaults.max_pending == 1024
        assert defaults.request_timeout == 30.0

    def test_serve_bench_substrate_flags(self):
        args = build_parser().parse_args(
            ["serve", "--bench-substrate", "16", "--bench-shape", "64"]
        )
        assert args.bench_substrate == 16
        assert args.bench_shape == 64
        assert build_parser().parse_args(["serve"]).bench_substrate is None

    def test_engine_config_flag_everywhere(self):
        for command in ("sanitize", "figure", "compare", "serve"):
            argv = [command, "table3"] if command == "figure" else [command]
            args = build_parser().parse_args(
                argv + ["--engine-config", "plan=dense"]
            )
            assert args.engine_config == "plan=dense"


class TestCommands:
    def test_methods_lists_all(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("identity", "ebp", "daf_entropy", "ag"):
            assert name in out

    def test_sanitize_city(self, capsys, tmp_path):
        out_file = tmp_path / "private.json"
        code = main([
            "sanitize", "--dataset", "denver", "--n-points", "5000",
            "--resolution", "32", "--method", "ebp", "--epsilon", "0.5",
            "--n-queries", "50", "--output", str(out_file),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "MRE=" in err
        payload = json.loads(out_file.read_text())
        assert payload["method"] == "ebp"

    def test_sanitize_gaussian(self, capsys):
        code = main([
            "sanitize", "--dataset", "gaussian", "--n-points", "4000",
            "--dims", "2", "--method", "identity", "--n-queries", "20",
        ])
        assert code == 0

    def test_sanitize_zipf(self, capsys):
        code = main([
            "sanitize", "--dataset", "zipf", "--n-points", "4000",
            "--dims", "2", "--method", "uniform", "--n-queries", "20",
        ])
        assert code == 0

    def test_compare_subset(self, capsys):
        code = main([
            "compare", "--dataset", "detroit", "--n-points", "5000",
            "--resolution", "32", "--methods", "identity", "ebp",
            "--n-queries", "30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "identity" in out and "ebp" in out

    def test_figure_table3(self, capsys):
        code = main(["figure", "table3", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "daf_entropy" in out

    def test_figure_with_forced_sharding(self, capsys):
        # The sharded engine end-to-end through the CLI: partitioned
        # methods must report plan=sharded in the rendered rows.
        code = main(
            ["figure", "table3", "--scale", "tiny", "--n-shards", "2"]
        )
        assert code == 0
        assert "sharded" in capsys.readouterr().out

    def test_figure_with_engine_config(self, capsys):
        # The full EngineConfig path: a sharded config through
        # --engine-config instead of the legacy --n-shards knob.
        # n_shards alone (no forced plan) lets dense-backed methods in
        # the mixed set keep their dense route.
        code = main([
            "figure", "table3", "--scale", "tiny",
            "--engine-config", "n_shards=2",
        ])
        assert code == 0
        assert "sharded" in capsys.readouterr().out

    def test_sanitize_with_engine_config(self, capsys):
        code = main([
            "sanitize", "--dataset", "gaussian", "--n-points", "4000",
            "--dims", "2", "--method", "ebp", "--n-queries", "20",
            "--engine-config", "plan=broadcast",
        ])
        assert code == 0

    def test_bad_engine_config_rejected(self):
        from repro.core import ValidationError

        with pytest.raises(ValidationError, match="unknown engine-config"):
            main([
                "sanitize", "--dataset", "gaussian", "--n-points", "2000",
                "--n-queries", "10", "--engine-config", "bogus=1",
            ])

    def test_serve_smoke(self, capsys):
        code = main([
            "serve", "--dataset", "gaussian", "--n-points", "4000",
            "--dims", "2", "--method", "ag", "--clients", "8",
            "--queries-per-client", "3",
            "--engine-config", "plan=broadcast,max_batch_size=8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 8 clients" in out
        assert "1 tick(s)" in out
        assert "max |batched - serial| = 0" in out

    def test_serve_port_boots_live_http_server(self):
        # The real network path: `repro serve --port 0` in a subprocess,
        # queried over actual TCP, then drained via SIGINT.
        import os
        import re
        import signal
        import subprocess
        import sys
        from pathlib import Path

        from repro.engine import ServingClient

        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--host", "127.0.0.1", "--port", "0",
                "--bench-substrate", "8", "--bench-shape", "32",
                "--engine-config", "plan=broadcast",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            port = None
            for line in process.stdout:
                match = re.search(r"serving on http://[^:]+:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port, "server never reported its port"
            with ServingClient(port=port, timeout=10.0) as client:
                assert client.healthz()["status"] == "ok"
                answer = client.query([[0, 0], [3, 3]], [[9, 9], [30, 30]])
                assert answer.n_queries == 2
                assert answer.plan == "broadcast"
                stats = client.statz()
                assert stats["counters"]["answered_requests"] == 1
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        assert process.returncode == 0
