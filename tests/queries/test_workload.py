"""Tests for repro.queries.workload."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.queries import (
    Workload,
    centered_workload,
    fixed_coverage_workload,
    paper_workloads,
    random_workload,
)


class TestWorkloadContainer:
    def test_basic(self):
        wl = Workload("w", (4, 4), (((0, 1), (0, 1)),))
        assert len(wl) == 1
        assert list(wl) == [((0, 1), (0, 1))]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            Workload("w", (4, 4), ())

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValidationError):
            Workload("w", (4, 4), (((0, 1),),))

    def test_coverage_fractions(self):
        wl = Workload("w", (4, 4), (((0, 1), (0, 1)), ((0, 3), (0, 3))))
        fracs = wl.coverage_fractions()
        assert fracs[0] == pytest.approx(0.25)
        assert fracs[1] == pytest.approx(1.0)


class TestRandomWorkload:
    def test_count_and_shape(self, rng):
        wl = random_workload((10, 20), 50, rng)
        assert len(wl) == 50
        assert wl.shape == (10, 20)

    def test_queries_in_bounds(self, rng):
        wl = random_workload((10, 20), 100, rng)
        for q in wl:
            for (lo, hi), s in zip(q, (10, 20)):
                assert 0 <= lo <= hi < s

    def test_sizes_vary(self, rng):
        wl = random_workload((50, 50), 100, rng)
        assert len(set(wl.coverage_fractions().round(4))) > 10

    def test_reproducible(self):
        a = random_workload((10, 10), 20, rng=3)
        b = random_workload((10, 10), 20, rng=3)
        assert a.queries == b.queries

    def test_validation(self):
        with pytest.raises(ValidationError):
            random_workload((10,), 0)


class TestFixedCoverageWorkload:
    def test_sides_fixed(self, rng):
        wl = fixed_coverage_workload((100, 100), 0.1, 50, rng)
        for q in wl:
            assert q[0][1] - q[0][0] + 1 == 10
            assert q[1][1] - q[1][0] + 1 == 10

    def test_coverage_one_is_full_matrix(self, rng):
        wl = fixed_coverage_workload((8, 8), 1.0, 5, rng)
        assert all(q == ((0, 7), (0, 7)) for q in wl)

    def test_tiny_coverage_floors_at_one_cell(self, rng):
        wl = fixed_coverage_workload((10, 10), 0.001, 5, rng)
        for q in wl:
            assert q[0][1] - q[0][0] == 0

    def test_in_bounds(self, rng):
        wl = fixed_coverage_workload((17, 33), 0.25, 200, rng)
        for q in wl:
            for (lo, hi), s in zip(q, (17, 33)):
                assert 0 <= lo <= hi < s

    def test_default_name(self, rng):
        assert fixed_coverage_workload((8, 8), 0.05, 5, rng).name == "coverage_0.05"

    def test_validation(self):
        with pytest.raises(ValidationError):
            fixed_coverage_workload((8, 8), 0.0, 5)
        with pytest.raises(ValidationError):
            fixed_coverage_workload((8, 8), 1.5, 5)


class TestCenteredWorkload:
    def test_centers_respected(self):
        centers = np.array([[50, 50]])
        wl = centered_workload((100, 100), 0.1, centers)
        (q,) = wl.queries
        assert q[0][0] <= 50 <= q[0][1]

    def test_clipped_at_edges(self):
        centers = np.array([[0, 99]])
        wl = centered_workload((100, 100), 0.2, centers)
        (q,) = wl.queries
        assert q[0][0] == 0
        assert q[1][1] == 99

    def test_validation(self):
        with pytest.raises(ValidationError):
            centered_workload((10, 10), 0.1, np.zeros((3, 3)))
        with pytest.raises(ValidationError):
            centered_workload((10, 10), 0.0, np.zeros((1, 2)))


class TestPaperWorkloads:
    def test_four_workloads(self, rng):
        wls = paper_workloads((64, 64), 20, rng)
        assert [w.name for w in wls] == [
            "random", "coverage_0.01", "coverage_0.05", "coverage_0.1"
        ]
        assert all(len(w) == 20 for w in wls)
