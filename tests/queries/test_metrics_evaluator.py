"""Tests for repro.queries.metrics and repro.queries.evaluator."""

import numpy as np
import pytest

from repro.core import ValidationError
from repro.methods import Identity, Uniform
from repro.queries import (
    WorkloadEvaluator,
    accuracy_report,
    mean_absolute_error,
    mean_relative_error,
    random_workload,
    relative_errors,
    root_mean_squared_error,
)


class TestRelativeErrors:
    def test_eq3_formula(self):
        errs = relative_errors(np.array([100.0]), np.array([110.0]))
        assert errs[0] == pytest.approx(10.0)

    def test_symmetric_in_error_sign(self):
        down = relative_errors(np.array([100.0]), np.array([90.0]))
        up = relative_errors(np.array([100.0]), np.array([110.0]))
        assert down[0] == up[0]

    def test_floor_guards_empty_queries(self):
        errs = relative_errors(np.array([0.0]), np.array([5.0]))
        assert errs[0] == pytest.approx(500.0)  # |5-0|/max(0,1)*100

    def test_custom_floor(self):
        errs = relative_errors(np.array([0.0]), np.array([5.0]), floor=10.0)
        assert errs[0] == pytest.approx(50.0)

    def test_perfect_answers(self):
        truth = np.array([1.0, 2.0, 3.0])
        assert relative_errors(truth, truth.copy()).sum() == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            relative_errors(np.zeros(3), np.zeros(4))

    def test_floor_validation(self):
        with pytest.raises(ValidationError):
            relative_errors(np.zeros(1), np.zeros(1), floor=0.0)


class TestAggregateMetrics:
    def test_mre_mean(self):
        truth = np.array([100.0, 100.0])
        est = np.array([110.0, 130.0])
        assert mean_relative_error(truth, est) == pytest.approx(20.0)

    def test_mae(self):
        assert mean_absolute_error(
            np.array([1.0, 2.0]), np.array([2.0, 0.0])
        ) == pytest.approx(1.5)

    def test_rmse(self):
        assert root_mean_squared_error(
            np.array([0.0, 0.0]), np.array([3.0, 4.0])
        ) == pytest.approx(np.sqrt(12.5))

    def test_accuracy_report_fields(self):
        truth = np.array([10.0, 20.0, 30.0])
        est = np.array([11.0, 19.0, 33.0])
        rep = accuracy_report(truth, est)
        assert rep.n_queries == 3
        assert rep.mre > 0
        assert rep.median_re > 0
        assert set(rep.as_dict()) == {"mre", "median_re", "mae", "rmse",
                                      "n_queries"}


class TestWorkloadEvaluator:
    def test_true_answers_cached_and_correct(self, small_2d, rng):
        ev = WorkloadEvaluator(small_2d)
        wl = random_workload(small_2d.shape, 30, rng)
        truth = ev.true_answers(wl)
        for q, t in zip(wl, truth):
            assert t == pytest.approx(small_2d.range_count(q))
        assert ev.true_answers(wl) is truth  # cached object

    def test_mismatched_workload_shape_rejected(self, small_2d, rng):
        from repro.core import QueryError

        ev = WorkloadEvaluator(small_2d)
        wl = random_workload((32, 32), 5, rng)  # matrix is 16x16
        with pytest.raises(QueryError, match="shape"):
            ev.true_answers(wl)

    def test_batched_evaluate_all_matches_per_workload(self, small_2d, rng):
        ev = WorkloadEvaluator(small_2d)
        wls = [
            random_workload(small_2d.shape, 15, rng, name="a"),
            random_workload(small_2d.shape, 25, rng, name="b"),
        ]
        private = Identity().sanitize(small_2d, 1.0, rng=0)
        batched = ev.evaluate_all(private, wls)
        singles = [ev.evaluate(private, wl) for wl in wls]
        for got, want in zip(batched, singles):
            assert got.workload == want.workload
            assert got.mre == pytest.approx(want.mre)

    def test_evaluate_result_fields(self, small_2d, rng):
        ev = WorkloadEvaluator(small_2d)
        wl = random_workload(small_2d.shape, 30, rng)
        private = Identity().sanitize(small_2d, 1.0, rng=0)
        res = ev.evaluate(private, wl)
        assert res.method == "identity"
        assert res.workload == wl.name
        assert res.epsilon == 1.0
        assert res.mre >= 0.0
        assert res.as_dict()["mre"] == res.mre

    def test_evaluate_many_cross_product(self, small_2d, rng):
        ev = WorkloadEvaluator(small_2d)
        wls = [
            random_workload(small_2d.shape, 10, rng, name="a"),
            random_workload(small_2d.shape, 10, rng, name="b"),
        ]
        privates = [
            Identity().sanitize(small_2d, 1.0, rng=0),
            Uniform().sanitize(small_2d, 1.0, rng=0),
        ]
        results = ev.evaluate_many(privates, wls)
        assert len(results) == 4
        assert {(r.method, r.workload) for r in results} == {
            ("identity", "a"), ("identity", "b"),
            ("uniform", "a"), ("uniform", "b"),
        }

    def test_more_budget_less_error(self, skewed_2d, rng):
        ev = WorkloadEvaluator(skewed_2d)
        wl = random_workload(skewed_2d.shape, 100, rng)
        mre_tight = np.mean([
            ev.evaluate(Identity().sanitize(skewed_2d, 0.05,
                                            np.random.default_rng(s)), wl).mre
            for s in range(3)
        ])
        mre_loose = np.mean([
            ev.evaluate(Identity().sanitize(skewed_2d, 5.0,
                                            np.random.default_rng(s)), wl).mre
            for s in range(3)
        ])
        assert mre_loose < mre_tight
