"""Privacy-focused tests: budget invariants and statistical DP checks.

A full DP verification is impossible by testing alone; these tests check
the *accounting* invariants every mechanism must satisfy (never overspend
the ledger; tree charges compose along paths) and run a statistical
likelihood-ratio check of the Laplace primitive on neighbouring inputs.
"""

import numpy as np
import pytest

from repro.core import Domain, FrequencyMatrix
from repro.dp import laplace_noise
from repro.methods import available_methods, get_sanitizer


def neighbouring_pair(rng, shape=(12, 12), n=800):
    """Two matrices differing by exactly one record."""
    cells = np.stack([rng.integers(0, s, size=n) for s in shape], axis=1)
    fm = FrequencyMatrix.from_cells(cells, Domain.regular(shape))
    data2 = fm.data.copy()
    data2[tuple(cells[0])] -= 1
    return fm, FrequencyMatrix(data2)


class TestBudgetInvariants:
    @pytest.mark.parametrize("name", available_methods())
    @pytest.mark.parametrize("epsilon", [0.1, 1.0])
    def test_never_overspends(self, name, epsilon, skewed_2d):
        private = get_sanitizer(name).sanitize(skewed_2d, epsilon, rng=0)
        total = private.metadata["budget_summary"]["<total>"]
        assert total <= epsilon + 1e-9

    @pytest.mark.parametrize("name", ["eug", "ebp", "mkm",
                                      "daf_entropy", "daf_homogeneity"])
    def test_spends_whole_budget(self, name, skewed_2d):
        """The paper's methods are designed to consume the full budget —
        leaving budget unspent is an accuracy bug, not a privacy one."""
        private = get_sanitizer(name).sanitize(skewed_2d, 0.5, rng=0)
        total = private.metadata["budget_summary"]["<total>"]
        assert total == pytest.approx(0.5, rel=1e-6)

    def test_daf_path_composition(self, skewed_2d):
        """Every DAF root-to-leaf path spends exactly eps_tot."""
        for name in ("daf_entropy", "daf_homogeneity"):
            method = get_sanitizer(name)
            method.sanitize(skewed_2d, 0.3, rng=1)
            tree = method.tree_

            def check(node, acc):
                acc += node.eps_spent
                if node.is_leaf:
                    assert acc == pytest.approx(0.3, rel=1e-6)
                for child in node.children:
                    check(child, acc)

            check(tree, 0.0)


class TestPublishedOutputsOnly:
    @pytest.mark.parametrize("name", available_methods())
    def test_publishable_payload_has_no_true_counts(self, name, skewed_2d):
        private = get_sanitizer(name).sanitize(skewed_2d, 0.5, rng=0)
        payload = private.to_publishable()

        def scan(obj):
            if isinstance(obj, dict):
                for k, v in obj.items():
                    assert k != "true_count"
                    assert k != "count" or not isinstance(v, (int, float))
                    scan(v)
            elif isinstance(obj, (list, tuple)):
                for v in obj:
                    scan(v)

        scan(payload)


class TestLaplaceLikelihoodRatio:
    def test_epsilon_indistinguishability_statistical(self):
        """Empirical check of Def. 1 on the scalar Laplace mechanism:
        for neighbouring counts c and c+1, the probability of any interval
        differs by at most a factor e^eps (up to sampling error)."""
        eps = 0.5
        n = 400_000
        rng = np.random.default_rng(0)
        out_a = 10.0 + laplace_noise(1.0, eps, rng, size=n)
        out_b = 11.0 + laplace_noise(1.0, eps, rng, size=n)
        bins = np.linspace(0.0, 21.0, 22)
        hist_a, _ = np.histogram(out_a, bins=bins)
        hist_b, _ = np.histogram(out_b, bins=bins)
        mask = (hist_a > 500) & (hist_b > 500)
        ratio = hist_a[mask] / hist_b[mask]
        assert ratio.max() <= np.exp(eps) * 1.15
        assert ratio.min() >= np.exp(-eps) / 1.15

    def test_noise_distribution_is_laplace(self):
        """Kolmogorov-Smirnov check of the noise primitive."""
        from scipy import stats
        eps = 0.7
        sample = laplace_noise(1.0, eps, rng=1, size=100_000)
        _, pvalue = stats.kstest(sample, "laplace", args=(0.0, 1.0 / eps))
        assert pvalue > 0.01


class TestNeighbouringOutputsOverlap:
    @pytest.mark.parametrize("name", ["identity", "uniform", "ebp"])
    def test_output_distributions_overlap(self, name, rng):
        """Coarse sanity: outputs on neighbouring datasets must be
        statistically close at moderate eps — their mean answers on a fixed
        query should differ far less than the noise spread."""
        fm_a, fm_b = neighbouring_pair(rng)
        box = ((0, 5), (0, 5))
        answers_a = []
        answers_b = []
        for s in range(40):
            child = np.random.default_rng(s)
            answers_a.append(
                get_sanitizer(name).sanitize(fm_a, 0.2, child).answer(box)
            )
            child = np.random.default_rng(1000 + s)
            answers_b.append(
                get_sanitizer(name).sanitize(fm_b, 0.2, child).answer(box)
            )
        gap = abs(np.mean(answers_a) - np.mean(answers_b))
        spread = np.std(answers_a) + np.std(answers_b) + 1e-9
        assert gap < spread * 2
