"""Quickstart: sanitize a frequency matrix and query it privately.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FrequencyMatrix, get_sanitizer, mean_relative_error, random_workload

# ----------------------------------------------------------------------
# 1. Build a frequency matrix.  Any non-negative count array works; here a
#    synthetic 64x64 "population map" with one dense neighbourhood.
# ----------------------------------------------------------------------
rng = np.random.default_rng(7)
points = rng.normal(loc=(20, 40), scale=6.0, size=(50_000, 2))
cells = np.clip(np.rint(points), 0, 63).astype(np.int64)
data = np.zeros((64, 64))
np.add.at(data, (cells[:, 0], cells[:, 1]), 1.0)
matrix = FrequencyMatrix(data)
print(f"matrix: shape={matrix.shape}, total count N={matrix.total:,.0f}")

# ----------------------------------------------------------------------
# 2. Sanitize under epsilon-differential privacy.  DAF-Entropy is the
#    paper's best general-purpose method; epsilon=0.1 is its strictest
#    evaluated privacy setting.
# ----------------------------------------------------------------------
epsilon = 0.1
sanitizer = get_sanitizer("daf_entropy")
private = sanitizer.sanitize(matrix, epsilon=epsilon, rng=42)
print(f"sanitized with {private.method!r}: {private.n_partitions} partitions, "
      f"epsilon={private.epsilon}")

# ----------------------------------------------------------------------
# 3. Ask range queries.  Boxes are inclusive (lo, hi) index pairs per
#    dimension; the private matrix answers under a per-partition
#    uniformity assumption.
# ----------------------------------------------------------------------
hotspot = ((14, 26), (34, 46))          # around the dense neighbourhood
suburb = ((48, 63), (0, 15))            # a sparse corner
for name, box in [("hotspot", hotspot), ("suburb", suburb)]:
    true = matrix.range_count(box)
    noisy = private.answer(box)
    print(f"{name:8s} true={true:9.0f}  private={noisy:9.1f}")

# ----------------------------------------------------------------------
# 4. Evaluate accuracy over a random workload (the paper's MRE metric).
# ----------------------------------------------------------------------
workload = random_workload(matrix.shape, n_queries=500, rng=1)
truth = np.array([matrix.range_count(q) for q in workload])
estimates = private.answer_many(list(workload))
print(f"MRE over {len(workload)} random queries: "
      f"{mean_relative_error(truth, estimates):.1f}%")

# ----------------------------------------------------------------------
# 5. The published artifact is just boxes + noisy counts — safe to share.
# ----------------------------------------------------------------------
payload = private.to_publishable()
print(f"publishable payload: {len(payload['partitions'])} partitions, "
      f"keys per partition: {sorted(payload['partitions'][0])}")
