"""Regenerate every table and figure of the paper in one run.

Usage:
    python examples/reproduce_paper.py [tiny|small|paper]

``tiny`` finishes in well under a minute, ``small`` (default) in a few
minutes, ``paper`` runs the full published parameters (10^6 points,
1000x1000 grids, 1000 queries) and takes correspondingly longer.  The
output is the set of series each figure plots; EXPERIMENTS.md records a
captured run next to the paper's reported shapes.
"""

import sys
import time

from repro.experiments import ALL_ARTIFACTS, get_scale

PANEL_SPECS = {
    "figure4": ("skew_fraction", [("d", d) for d in (2, 4, 6)]),
    "figure5": ("zipf_a", [("d", d) for d in (2, 4, 6)]),
    "figure6": ("epsilon", [("city", c) for c in ("new_york", "denver", "detroit")]),
    "figure7": ("epsilon", [("city", c) for c in ("new_york", "denver", "detroit")]),
    "figure8": ("epsilon", [("city", c) for c in ("new_york", "denver", "detroit")]),
}


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "small"
    scale = get_scale(scale_name)
    print(f"Reproducing all paper artifacts at scale {scale.name!r} "
          f"(N={scale.n_points:,}, grid={scale.city_resolution}, "
          f"queries={scale.n_queries})")

    for name, fn in ALL_ARTIFACTS.items():
        start = time.perf_counter()
        result = fn(scale=scale, rng=2022)
        elapsed = time.perf_counter() - start
        print(f"\n{'=' * 72}\n{name} ({elapsed:.1f}s): {result.description}\n")
        if name == "table3":
            print(result.panel("city", "method", "sanitize_seconds"))
            continue
        index, panels = PANEL_SPECS[name]
        for key, value in panels:
            print(result.panel(index, "method", **{key: value}))
            print()


if __name__ == "__main__":
    main()
