"""Compare every registered sanitizer on one city histogram.

Sweeps all ten methods (the paper's six plus the four extensions) over
three privacy budgets on a New-York-like population histogram and prints
the MRE panel — the quickest way to see the paper's Figure 6 ordering,
including the extensions the paper only cites.

Run:  python examples/method_comparison.py
"""

import time

import numpy as np

from repro.datagen import get_city
from repro.methods import available_methods, get_sanitizer
from repro.queries import WorkloadEvaluator, fixed_coverage_workload, random_workload

EPSILONS = [0.1, 0.3, 0.5]
N_POINTS = 200_000
RESOLUTION = 256
N_QUERIES = 400

city = get_city("new_york")
matrix = city.population_matrix(n_points=N_POINTS, resolution=RESOLUTION, rng=0)
evaluator = WorkloadEvaluator(matrix)
workloads = [
    random_workload(matrix.shape, N_QUERIES, rng=1, name="random"),
    fixed_coverage_workload(matrix.shape, 0.05, N_QUERIES, rng=2, name="5%"),
]

print(f"{city.name}: {matrix.total:,.0f} points, {RESOLUTION}x{RESOLUTION} grid")
for workload in workloads:
    print(f"\n=== workload: {workload.name} (MRE %, lower is better) ===")
    header = f"{'method':18s}" + "".join(f"  eps={e:<6g}" for e in EPSILONS)
    print(header + "  sanitize-time")
    for name in available_methods():
        cells = []
        elapsed = 0.0
        for eps in EPSILONS:
            start = time.perf_counter()
            private = get_sanitizer(name).sanitize(matrix, eps, rng=42)
            elapsed += time.perf_counter() - start
            cells.append(evaluator.evaluate(private, workload).mre)
        row = f"{name:18s}" + "".join(f"  {c:9.1f}" for c in cells)
        print(row + f"  {elapsed / len(EPSILONS):8.2f}s")

print("\nReading guide: IDENTITY/MKM pay full per-cell noise; UNIFORM pays "
      "full uniformity error; the adaptive methods (EBP, DAF) balance the "
      "two, which is the paper's core claim.")
