"""Transit planning with a private classical OD matrix.

The original OD-matrix use case (Section 1): provision transport capacity
by measuring demand between district pairs.  A transit agency receives the
DP-sanitized 4-D OD matrix and ranks corridor demand — comparing how each
sanitization method preserves the ranking at different privacy budgets.

Run:  python examples/transit_planning.py
"""

import numpy as np

from repro import classical_od_matrix, get_sanitizer
from repro.datagen import get_city, simulate_od_dataset
from repro.trajectories import circle_region, flow_between

METHODS = ["uniform", "ebp", "daf_entropy", "daf_homogeneity"]
EPSILONS = [0.1, 0.5]

# ----------------------------------------------------------------------
# 1. Simulate commuting and build the classical (origin, dest) OD matrix.
# ----------------------------------------------------------------------
city = get_city("denver")
dataset = simulate_od_dataset(city, n_trajectories=60_000, n_stops=0, rng=3)
matrix = classical_od_matrix(dataset, city.grid, cell_budget=1_000_000)
print(f"{city.name}: OD matrix {matrix.shape}, "
      f"{dataset.n_trajectories:,} trips")

# ----------------------------------------------------------------------
# 2. Define candidate transit corridors between districts.
# ----------------------------------------------------------------------
c = city.side_km / 2
districts = {
    "downtown": circle_region((c, c), 5.0),
    "north-suburb": circle_region((c - 7, c - 5), 5.0),
    "east-side": circle_region((c + 7, c + 5), 5.0),
    "airport": circle_region((c + 16, c - 14), 6.0),
}
corridors = [
    ("north-suburb", "downtown"),
    ("east-side", "downtown"),
    ("downtown", "airport"),
    ("north-suburb", "east-side"),
]

true_demand = {
    f"{a}->{b}": flow_between(matrix, districts[a], districts[b])
    for a, b in corridors
}
true_ranking = sorted(true_demand, key=true_demand.get, reverse=True)
print("\nTrue corridor demand:")
for name in true_ranking:
    print(f"  {name:28s} {true_demand[name]:8.0f} trips")

# ----------------------------------------------------------------------
# 3. Sanitize with each method and check the demand ranking survives.
# ----------------------------------------------------------------------
for epsilon in EPSILONS:
    print(f"\n=== epsilon = {epsilon} ===")
    print(f"{'method':18s} {'top corridor kept?':20s} {'mean rel.err':>12s}")
    for method in METHODS:
        private = get_sanitizer(method).sanitize(matrix, epsilon, rng=9)
        noisy = {
            name: flow_between(private, districts[a], districts[b])
            for name, (a, b) in zip(true_demand, corridors)
        }
        noisy_ranking = sorted(noisy, key=noisy.get, reverse=True)
        kept = "yes" if noisy_ranking[0] == true_ranking[0] else "NO"
        errs = [
            abs(noisy[k] - true_demand[k]) / max(true_demand[k], 1.0)
            for k in true_demand
        ]
        print(f"{method:18s} {kept:20s} {100 * float(np.mean(errs)):11.1f}%")

print("\nAdaptive methods (DAF, EBP) keep corridor rankings usable at "
      "budgets where the uniform baseline's volume-proportional answers "
      "wash demand differences out.")
