"""Semantic mobility patterns over a private OD matrix with stops.

The paper's future-work direction (Section 7): analysts often care about
the *type* of place visited, not the coordinates — e.g. how many
residential -> entertainment -> sports day-patterns exist.  This example
labels the city with a synthetic land-use map, publishes a DP OD matrix
with one intermediate stop, and computes semantic sequence counts and the
category-level transition matrix purely from the published output.

Run:  python examples/semantic_mobility_patterns.py
"""

import numpy as np

from repro import get_sanitizer, od_matrix_with_stops
from repro.datagen import get_city, simulate_od_dataset
from repro.trajectories import (
    SemanticMap,
    semantic_sequence_count,
    semantic_transition_matrix,
)

EPSILON = 0.5

city = get_city("denver")
dataset = simulate_od_dataset(city, n_trajectories=50_000, n_stops=1, rng=5)
matrix = od_matrix_with_stops(dataset, city.grid, cell_budget=600_000)
print(f"{city.name}: {dataset.n_trajectories:,} trips -> "
      f"{matrix.ndim}-D OD matrix {matrix.shape}")

semantic = SemanticMap.random(city.grid, rng=8)
for category in semantic.categories:
    print(f"  {category:14s} {semantic.category_fraction(category):5.1%} of cells")

private = get_sanitizer("daf_entropy").sanitize(matrix, EPSILON, rng=6)
print(f"\npublished at epsilon={EPSILON}; all numbers below are computed "
      "from the private output (post-processing preserves DP)\n")

sequences = [
    ("residential", "commercial", "workplace"),
    ("residential", "entertainment", "sports"),
    ("workplace", "commercial", "residential"),
]
print(f"{'day-pattern (origin -> stop -> dest)':45s} {'true':>9s} {'private':>9s}")
for seq in sequences:
    true = semantic_sequence_count(matrix, semantic, seq)
    noisy = semantic_sequence_count(private, semantic, seq)
    print(f"{' -> '.join(seq):45s} {true:9.0f} {noisy:9.1f}")

print("\nCategory-level OD transition matrix (origin -> destination, private):")
flows = semantic_transition_matrix(private, semantic)
true_flows = semantic_transition_matrix(matrix, semantic)
categories = semantic.categories
print(f"{'':14s}" + "".join(f"{c[:10]:>12s}" for c in categories))
for ca in categories:
    row = "".join(f"{flows[(ca, cb)]:12.0f}" for cb in categories)
    print(f"{ca[:14]:14s}{row}")

top_true = max(true_flows, key=true_flows.get)
top_private = max(flows, key=flows.get)
print(f"\nbusiest corridor: true {top_true}, private {top_private} "
      f"({'preserved' if top_true == top_private else 'changed'})")
