"""COVID-style exposure analysis over a private OD matrix with stops.

The paper's motivating scenario (Section 1): an analyst studies disease
spread and needs not just trip endpoints but the *intermediate stops*
where exposure may have occurred — without being able to single out any
individual's trajectory.

This example simulates a city's trajectories (origin -> stop -> dest),
builds the 6-D OD matrix with intermediate stops, sanitizes it with
DAF-Entropy at a strict budget, and answers exposure queries on the
private output only.

Run:  python examples/covid_exposure_analysis.py
"""

import numpy as np

from repro import get_sanitizer, od_matrix_with_stops
from repro.datagen import get_city, simulate_od_dataset
from repro.trajectories import (
    circle_region,
    exposure_count,
    flow_via,
    visits_through,
)

EPSILON = 0.5

# ----------------------------------------------------------------------
# 1. Simulate mobility: 40k trips with one recorded intermediate stop.
#    (The paper uses 300k Veraset trajectories; see DESIGN.md for the
#    substitution rationale.)
# ----------------------------------------------------------------------
city = get_city("new_york")
dataset = simulate_od_dataset(city, n_trajectories=40_000, n_stops=1, rng=11)
print(f"simulated {dataset.n_trajectories:,} trips over {city.name}, "
      f"{dataset.n_stops_each} stop(s) each")

# ----------------------------------------------------------------------
# 2. Build the OD matrix with stops: 6 dimensions (x,y per frame).
# ----------------------------------------------------------------------
matrix = od_matrix_with_stops(dataset, city.grid, cell_budget=500_000)
print(f"OD matrix with stops: shape={matrix.shape} "
      f"({matrix.n_cells:,} cells, {matrix.nonzero_fraction():.2%} non-zero)")

# ----------------------------------------------------------------------
# 3. Sanitize.  From here on the analyst touches ONLY `private`.
# ----------------------------------------------------------------------
private = get_sanitizer("daf_entropy").sanitize(matrix, EPSILON, rng=0)
print(f"sanitized: {private.n_partitions} partitions at epsilon={EPSILON}")

# ----------------------------------------------------------------------
# 4. Exposure queries.  An outbreak was detected at a market near the
#    city centre: who passed through, and on which kinds of trips?
# ----------------------------------------------------------------------
# Region radii are chosen >= one OD cell (70 km / 8 cells = 8.75 km):
# smaller regions than the matrix resolution only measure uniformity error.
c = city.side_km / 2
market = circle_region((c, c), 9.0)
suburb = circle_region((c - 18, c - 18), 10.0)
downtown = circle_region((c + 9, c + 9), 10.0)

queries = {
    "trips stopping at the market (any O/D)":
        lambda m: visits_through(m, market, frame=1),
    "suburb -> market stop -> downtown trips":
        lambda m: flow_via(m, suburb, downtown, market),
    "stopped at market AND ended downtown":
        lambda m: exposure_count(m, [market, downtown], [1, 2]),
}

print(f"\n{'query':45s} {'true':>10s} {'private':>10s} {'rel.err':>8s}")
for label, fn in queries.items():
    true = fn(matrix)
    noisy = fn(private)
    err = abs(noisy - true) / max(true, 1.0) * 100
    print(f"{label:45s} {true:10.0f} {noisy:10.1f} {err:7.1f}%")

print("\nAll reported counts are differentially private: no individual "
      "trajectory can be singled out from the published matrix.")
