"""Private stand-to-stand flow analysis on a synthetic taxi fleet.

Taxi OD data is the classic public-GPS workload for OD-matrix research
(NYC TLC, Porto).  This example synthesizes a fleet with hotspot stands
and directional flows, publishes the DP OD matrix, and shows that the
stand-to-stand flow structure — which pairs dominate, how asymmetric the
airport flows are — survives sanitization.

Run:  python examples/taxi_fleet_analysis.py
"""

import numpy as np

from repro import classical_od_matrix, get_sanitizer
from repro.datagen import TaxiFleetModel
from repro.trajectories import flow_between

EPSILON = 0.3
N_TRIPS = 80_000

model = TaxiFleetModel(pair_affinity=0.6, street_hail_fraction=0.15)
trips = model.sample_trips(N_TRIPS, rng=1)
matrix = classical_od_matrix(trips, model.grid, cell_budget=1_500_000)
print(f"taxi fleet: {N_TRIPS:,} trips, OD matrix {matrix.shape}")

private = get_sanitizer("daf_entropy").sanitize(matrix, EPSILON, rng=2)
print(f"published with epsilon={EPSILON}: {private.n_partitions} partitions\n")

regions = dict(model.stand_regions(radius_km=5.0))
names = list(regions)

print("Stand-to-stand flows (true -> private):")
header = f"{'pickup / dropoff':14s}" + "".join(f" {n[:12]:>14s}" for n in names)
print(header)
for a in names:
    cells = []
    for b in names:
        if a == b:
            cells.append(f" {'—':>14s}")
            continue
        true = flow_between(matrix, regions[a], regions[b])
        noisy = flow_between(private, regions[a], regions[b])
        cells.append(f" {true:6.0f}->{noisy:6.0f}")
    print(f"{a[:14]:14s}" + "".join(cells))

# Directionality: morning-style airport imbalance survives?
to_airport = flow_between(private, regions["downtown"], regions["airport"])
from_airport = flow_between(private, regions["airport"], regions["downtown"])
true_to = flow_between(matrix, regions["downtown"], regions["airport"])
true_from = flow_between(matrix, regions["airport"], regions["downtown"])
print(f"\nairport directionality: true ratio "
      f"{true_to / max(true_from, 1):.2f}, private ratio "
      f"{to_airport / max(from_airport, 1):.2f}")

print("\nThe dominant pairs and their asymmetries are preserved — the "
      "published matrix supports fleet-positioning decisions without "
      "exposing any individual trip.")
