"""Reproduce the intuition of the paper's Figure 3 in ASCII.

Renders a Los Angeles-like density (the paper uses 500k Veraset points)
and overlays the partition boundaries chosen by (a) a non-adaptive uniform
grid, (b) DAF-Entropy, and (c) DAF-Homogeneity.  Vertical bars are
dimension-1 cuts (the paper's green lines); horizontal dashes are
dimension-2 cuts (yellow lines).

Run:  python examples/partition_visualization.py
"""

from repro.datagen import los_angeles_like
from repro.methods import DAFEntropy, DAFHomogeneity, EBP
from repro.viz import ascii_heatmap, ascii_partition_overlay, render_grid_partitioning

EPSILON = 0.1
ROWS, COLS = 24, 56

city = los_angeles_like()
matrix = city.population_matrix(n_points=500_000, resolution=256, rng=3)
print(f"{city.name}: {matrix.total:,.0f} points on a "
      f"{matrix.shape[0]}x{matrix.shape[1]} grid\n")

print("Population density:")
print(ascii_heatmap(matrix.data.T, rows=ROWS, cols=COLS))

ebp = EBP().sanitize(matrix, EPSILON, rng=0)
print(f"\n(a) Non-adaptive uniform grid (EBP, m={ebp.metadata['m']}): "
      "every dimension cut evenly")
print(render_grid_partitioning(matrix.shape, int(ebp.metadata["m"]),
                               rows=ROWS, cols=COLS))

for label, method in [
    ("(b) DAF-Entropy: fanout adapts per dimension and region", DAFEntropy()),
    ("(c) DAF-Homogeneity: split positions chase homogeneous bins",
     DAFHomogeneity()),
]:
    private = method.sanitize(matrix, EPSILON, rng=0)
    print(f"\n{label}  [{private.n_partitions} partitions]")
    print(ascii_partition_overlay(
        matrix, private.metadata["split_tree"], rows=ROWS, cols=COLS
    ))

print("\nNote how the DAF cuts crowd the dense corridors while the uniform "
      "grid spends partitions on empty space — the accuracy gap of "
      "Figures 4-8 in one picture.")
