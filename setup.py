"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so editable installs work in offline environments whose pip cannot
fetch the ``wheel`` backend (``pip install -e . --no-build-isolation
--no-use-pep517``).
"""

from setuptools import setup

setup()
